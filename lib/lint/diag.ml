(* A single lint finding: rule code + source position + human message.
   Rendering is one line per finding so golden tests can diff output. *)

type t = {
  code : string; (* "D1".."D9", or "S1".."S3" for suppression hygiene *)
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~code ~loc ~message =
  let p = loc.Location.loc_start in
  {
    code;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let order a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare a.code b.code

let to_string d = Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.code d.message

let render diags = String.concat "\n" (List.map to_string diags)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json d =
  Printf.sprintf "{\"code\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
    (json_string d.code) (json_string d.file) d.line d.col (json_string d.message)
