(* The typed mortar-lint rules (D7-D9), run over compiler [.cmt]
   artifacts with [Tast_iterator] — unlike D1-D6 these see resolved
   paths and inferred types, so they can reason about mutability and
   constructor coverage instead of surface syntax.

   D7  cross-shard mutable escape. A value of mutable type — [ref],
       [array], [Bytes.t], [Hashtbl.t], [Buffer.t], [Queue.t],
       [Stack.t], [Atomic.t], or any record declaring a [mutable] field
       (determined from the typedtree declarations collected across the
       whole run, not from names) — captured by a closure passed into
       the parallel runtime ([Par.Pool.run]-style entry points, plus
       the deployment's [par_shards] wrapper) is a potential data race:
       it is visible both to the shard slice and to the merge loop.
       The sanctioned escape hatch is the timestamped outbox API: a
       capture consumed directly by an allow-listed [Shard] accessor
       ([Shard.post] / [Shard.drain] / [Shard.create_outbox]) is the
       canonical cross-shard channel and is not flagged. Everything
       else needs an inline allow comment explaining why the access is
       race-free (e.g. "item i touches only shards.(i)").

   D8  protocol exhaustiveness. A [match] (or [function]) over a
       protocol sum type — [Msg.payload], the peer wire protocol, or
       [Plan.Registry.action], the planner's command stream — must
       handle every constructor explicitly: a catch-all case means a
       newly added message variant silently falls into whatever the
       wildcard does (usually: gets dropped). Flagged unless justified
       inline with an allow comment.

   D9  hot-path allocation. Functions annotated [@lint.hot] are the
       per-event/per-message fast paths; the rule flags allocations the
       typedtree makes visible — nested closure literals, tuples,
       record literals, and boxed floats (a float argument to a
       constructor) — except inside observability branches guarded by a
       disabled-by-default flag (a condition reading [...enabled]),
       which are sanctioned cold paths.

   All three degrade gracefully where artifacts are missing: no cmt,
   no typed findings (the syntactic D1-D6 pass still runs). On 4.14
   the parallel runtime is the sequential fallback but exposes the
   same [Par.Pool] paths, so D7 analyzes identical call sites. *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Phase 1: mutability environment, collected over every loaded cmt.   *)

type tenv = {
  mut_types : (string, unit) Hashtbl.t;
  (* keys for a mutable type [ty] declared in unit [U] (short name [S]):
     "U.ty", "S.ty", and bare "ty" unless the name is the conventional
     "t" (too generic to key globally — "S.t" still matches). *)
  mutable aliases : (string list * Types.type_expr) list;
  (* abbreviations pending resolution: keys, manifest *)
}

let empty_tenv () = { mut_types = Hashtbl.create 64; aliases = [] }

(* "Mortar_sim__Shard" -> Some "Shard" *)
let short_of_modname m =
  match Lint_util.rsplit2 m "__" with
  | Some (_, s) when s <> "" -> Some s
  | None | Some _ -> None

let keys_for ~modname ty =
  let ks = [ modname ^ "." ^ ty ] in
  let ks = match short_of_modname modname with Some s -> (s ^ "." ^ ty) :: ks | None -> ks in
  if ty <> "t" then ty :: ks else ks

(* Lookup keys for a resolved type path: the full dotted name, the
   "Parent.last" pair (with the parent's "__" prefix stripped), and the
   bare last component. *)
let lookup_keys path =
  let name = Path.name path in
  let parts = String.split_on_char '.' name in
  let last = List.nth parts (List.length parts - 1) in
  let parent = match List.rev parts with _ :: p :: _ -> Some p | _ -> None in
  let keys = [ name ] in
  let keys =
    match parent with
    | None -> keys
    | Some p ->
      let keys = (p ^ "." ^ last) :: keys in
      (match short_of_modname p with Some s -> (s ^ "." ^ last) :: keys | None -> keys)
  in
  (last :: keys, last, parent)

let parent_short parent =
  match parent with
  | None -> None
  | Some p -> ( match short_of_modname p with Some s -> Some s | None -> Some p)

let mutable_stdlib_containers = [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Atomic"; "Bytes"; "Int_tbl"; "Itbl" ]

let rec type_is_mutable env ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, args, _) -> (
    let keys, last, parent = lookup_keys path in
    match last with
    | "ref" | "array" | "bytes" -> true
    | "option" | "list" -> (
      match args with [ a ] -> type_is_mutable env a | _ -> false)
    | _ ->
      (match parent_short parent with
      | Some p when last = "t" && List.mem p mutable_stdlib_containers -> true
      | _ -> List.exists (Hashtbl.mem env.mut_types) keys))
  | Types.Ttuple ts -> List.exists (type_is_mutable env) ts
  | _ -> false

(* Human-readable type head for messages: last two path components. *)
let type_head ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, _, _) -> (
    let name = Path.name path in
    let parts = String.split_on_char '.' name in
    match List.rev parts with
    | last :: parent :: _ ->
      let parent = match short_of_modname parent with Some s -> s | None -> parent in
      parent ^ "." ^ last
    | _ -> name)
  | Types.Ttuple _ -> "tuple"
  | _ -> "value"

let collect_types env ~modname (str : structure) =
  let add_mutable ty = List.iter (fun k -> Hashtbl.replace env.mut_types k ()) (keys_for ~modname ty) in
  let structure_item it (x : structure_item) =
    (match x.str_desc with
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : type_declaration) ->
          let name = d.typ_name.Location.txt in
          match d.typ_kind with
          | Ttype_record labels ->
            if List.exists (fun l -> l.ld_mutable = Asttypes.Mutable) labels then
              add_mutable name
          | Ttype_abstract | Ttype_variant _ | Ttype_open -> (
            match d.typ_manifest with
            | Some ct ->
              env.aliases <- (keys_for ~modname name, ct.ctyp_type) :: env.aliases
            | None -> ()))
        decls
    | _ -> ());
    Tast_iterator.default_iterator.structure_item it x
  in
  let it = { Tast_iterator.default_iterator with structure_item } in
  it.structure it str

(* Resolve alias chains (type t = foo ref; type u = t) to a fixpoint. *)
let close_tenv env =
  let changed = ref true in
  while !changed do
    changed := false;
    let pending, resolved =
      List.partition (fun (_, manifest) -> not (type_is_mutable env manifest)) env.aliases
    in
    if resolved <> [] then begin
      List.iter
        (fun (keys, _) -> List.iter (fun k -> Hashtbl.replace env.mut_types k ()) keys)
        resolved;
      env.aliases <- pending;
      changed := true
    end
  done

(* ------------------------------------------------------------------ *)
(* Shared helpers for the rule pass.                                   *)

let path_parts p =
  Path.name p |> String.split_on_char '.'
  |> List.concat_map (fun s ->
         match Lint_util.rsplit2 s "__" with Some (a, b) -> [ a; b ] | None -> [ s ])

let last_part p =
  let parts = path_parts p in
  List.nth parts (List.length parts - 1)

(* D7: entry points into the parallel runtime whose closure arguments
   run on worker domains. *)
let is_par_entry p =
  let parts = path_parts p in
  let last = last_part p in
  (List.mem "Pool" parts && List.mem last [ "run"; "map"; "iter" ]) || last = "par_shards"

(* D7: the sanctioned outbox API — a mutable capture handed straight to
   one of these is the canonical cross-shard channel. *)
let is_outbox_accessor p =
  let parts = path_parts p in
  List.mem "Shard" parts
  && List.mem (last_part p) [ "post"; "drain"; "create_outbox"; "compare_stamped" ]

(* D8: protocol sum types whose dispatch must stay exhaustive. *)
let protocol_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, _, _) -> (
    let parts = path_parts path in
    let last = last_part path in
    match last with
    | "payload" when List.mem "Msg" parts -> Some "Msg.payload"
    | "action" when List.mem "Registry" parts -> Some "Registry.action"
    | _ -> None)
  | _ -> None

let rec pat_is_catch_all : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (q, _, _) -> pat_is_catch_all q
  | Tpat_value v -> pat_is_catch_all (v :> value general_pattern)
  | Tpat_or (a, b, _) -> pat_is_catch_all a || pat_is_catch_all b
  | _ -> false

let pat_is_exception : type k. k general_pattern -> bool =
 fun p -> match p.pat_desc with Tpat_exception _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* The rule pass.                                                      *)

type ctx = {
  env : tenv;
  allow_multicore : bool; (* lib/par: D7 does not apply inside the runtime *)
  mutable out : Diag.t list;
}

let add ctx ~code ~loc message = ctx.out <- Diag.make ~code ~loc ~message :: ctx.out

(* ---- D7 ---------------------------------------------------------- *)

(* Idents bound anywhere inside [e] (params, lets, match cases, for
   indices). Scope-insensitive on purpose: a shadowing binder hides a
   same-named capture, which errs toward silence, never noise. *)
let bound_idents (e : expression) =
  let tbl = Hashtbl.create 16 in
  let bind id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> bind id
    | Tpat_alias (_, id, _) -> bind id
    | _ -> ());
    Tast_iterator.default_iterator.pat it p
  in
  let expr it (x : expression) =
    (match x.exp_desc with Texp_for (id, _, _, _, _, _) -> bind id | _ -> ());
    Tast_iterator.default_iterator.expr it x
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it e;
  tbl

(* Walk a closure body flagging mutable captures. [sanctioned] is true
   while descending through an allow-listed accessor's argument (only
   field projections keep it — anything else re-evaluates). *)
let check_closure ctx (closure : expression) =
  let bound = bound_idents closure in
  let reported = Hashtbl.create 4 in
  let rec walk ~sanctioned (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      if not sanctioned then
        match p with
        | Path.Pident id when Hashtbl.mem bound (Ident.unique_name id) -> ()
        | _ ->
          if type_is_mutable ctx.env e.exp_type && not (Hashtbl.mem reported (Path.name p))
          then begin
            Hashtbl.replace reported (Path.name p) ();
            add ctx ~code:"D7" ~loc:e.exp_loc
              (Printf.sprintf
                 "mutable state '%s' (%s) is captured by a closure handed to the parallel \
                  runtime; cross-shard mutation bypasses the outbox merge order — route it \
                  through the Shard outbox API or justify the sharding discipline inline"
                 (Path.name p) (type_head e.exp_type))
          end)
    | Texp_field (inner, _, _) -> walk ~sanctioned inner
    | Texp_apply (fn, args) ->
      let fn_sanctions =
        match fn.exp_desc with Texp_ident (p, _, _) -> is_outbox_accessor p | _ -> false
      in
      walk ~sanctioned:false fn;
      List.iter
        (fun (_, a) -> match a with Some a -> walk ~sanctioned:fn_sanctions a | None -> ())
        args
    | _ -> iter_children ~sanctioned:false e
  and iter_children ~sanctioned e =
    (* Generic recursion into sub-expressions via the iterator, with the
       sanction flag dropped (it only survives projection chains). *)
    ignore sanctioned;
    let expr _it (x : expression) = walk ~sanctioned:false x in
    let it = { Tast_iterator.default_iterator with expr } in
    Tast_iterator.default_iterator.expr it e
  in
  match closure.exp_desc with
  | Texp_function { cases; _ } ->
    List.iter
      (fun c ->
        (match c.c_guard with Some g -> walk ~sanctioned:false g | None -> ());
        walk ~sanctioned:false c.c_rhs)
      cases
  | _ -> walk ~sanctioned:false closure

(* ---- D9 ---------------------------------------------------------- *)

(* A condition that reads a [...enabled]-style flag guards a sanctioned
   cold branch (observability is off by default on the hot path). *)
let guard_is_cold (cond : expression) =
  let found = ref false in
  let expr it (x : expression) =
    (match x.exp_desc with
    | Texp_ident (p, _, _) when last_part p = "enabled" -> found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr it x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it cond;
  !found

let is_float_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, [], _) -> Path.name path = "float"
  | _ -> false

let check_hot ctx ~fname (body : expression) =
  let flag loc what =
    add ctx ~code:"D9" ~loc
      (Printf.sprintf
         "%s inside [@lint.hot] function '%s'; hoist it off the per-event path, guard it \
          behind a disabled-by-default flag, or justify it inline"
         what fname)
  in
  (* [top] is true while descending the function's own parameter chain:
     those [fun]s are the function, not allocations it performs. *)
  let rec walk ~top (e : expression) =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
      if not top then flag e.exp_loc "closure allocation";
      List.iter
        (fun c ->
          (match c.c_guard with Some g -> walk ~top:false g | None -> ());
          walk ~top c.c_rhs)
        cases
    | Texp_let (_, vbs, body) when top ->
      (* Optional arguments with defaults desugar to a [let] between two
         parameter [fun]s; keep the parameter-chain exemption flowing
         through the let's BODY only. Closures bound by the let itself
         (walked non-top) are still flagged. *)
      List.iter (fun vb -> walk ~top:false vb.vb_expr) vbs;
      walk ~top body
    | Texp_tuple _ ->
      flag e.exp_loc "tuple allocation";
      children e
    | Texp_record _ ->
      flag e.exp_loc "record allocation";
      children e
    | Texp_construct (_, _, args) ->
      if List.exists (fun (a : expression) -> is_float_type a.exp_type) args then
        flag e.exp_loc "boxed-float allocation (float argument to a constructor)";
      children e
    | Texp_ifthenelse (cond, then_, else_) when guard_is_cold cond ->
      (* The guarded branch is the sanctioned cold path; the else branch
         stays hot. *)
      ignore then_;
      (match else_ with Some e2 -> walk ~top:false e2 | None -> ())
    | _ -> children e
  and children e =
    let expr _it (x : expression) = walk ~top:false x in
    let it = { Tast_iterator.default_iterator with expr } in
    Tast_iterator.default_iterator.expr it e
  in
  walk ~top:true body

let has_hot_attr (vb : value_binding) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.Parsetree.attr_name.Location.txt = "lint.hot")
    vb.vb_attributes

let binding_name (vb : value_binding) =
  match vb.vb_pat.pat_desc with Tpat_var (id, _) -> Ident.name id | _ -> "<pattern>"

(* ---- the per-file pass ------------------------------------------- *)

let check_d8 ctx ~loc ty cases =
  match protocol_type ty with
  | None -> ()
  | Some proto ->
    List.iter
      (fun c ->
        if (not (pat_is_exception c.c_lhs)) && pat_is_catch_all c.c_lhs then
          add ctx ~code:"D8" ~loc:c.c_lhs.pat_loc
            (Printf.sprintf
               "catch-all case in a match on %s; handle every constructor explicitly so a \
                new protocol variant cannot be silently dropped (or justify the wildcard \
                inline)"
               proto))
      cases;
    ignore loc

let run_rules env ~allow_multicore (str : structure) =
  let ctx = { env; allow_multicore; out = [] } in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_apply (fn, args) when not ctx.allow_multicore -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) when is_par_entry p ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some (arg : expression) -> (
              match arg.exp_desc with
              | Texp_function _ -> check_closure ctx arg
              | _ -> ())
            | None -> ())
          args
      | _ -> ())
    | Texp_match (scrut, cases, _) -> check_d8 ctx ~loc:e.exp_loc scrut.exp_type cases
    | Texp_function { cases = c :: _ :: _ as cases; _ } ->
      (* [function]-style dispatch over the protocol type. Only multi-case
         functions count: a single var pattern is a plain parameter
         ([fun payload -> ...]), not a dispatch with a wildcard arm. *)
      check_d8 ctx ~loc:e.exp_loc c.c_lhs.pat_type cases
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let structure_item it (x : structure_item) =
    (match x.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          if has_hot_attr vb then check_hot ctx ~fname:(binding_name vb) vb.vb_expr)
        vbs
    | _ -> ());
    Tast_iterator.default_iterator.structure_item it x
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.structure it str;
  List.rev ctx.out
