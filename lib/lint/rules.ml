(* The six mortar-lint rules, implemented as one Ast_iterator pass per
   file over the Parsetree (compiler-libs.common only — no typing, so
   every rule is syntactic and errs on the side of precision; anything
   it cannot see, it does not flag).

   D1  wall-clock reads (Unix.gettimeofday / Unix.time / Sys.time)
       anywhere but the allow-listed bench timing module. Simulated
       components must take time from Sim.Clock; a single stray
       gettimeofday breaks byte-identical seeded replay.
   D2  the global Random module (including Random.State and especially
       Random.self_init). All randomness must flow through the seeded
       splitmix Util.Rng so a run is a pure function of its seed.
   D3  hash-order escaping into an ordered data structure, two forms:
       (a) Hashtbl.fold / Hashtbl.iter whose callback builds a list (a
       [::] cons anywhere in the callback, whatever the argument's
       label or position — MoreLabels-style [~f:] callbacks count);
       (b) Hashtbl.to_seq / to_seq_keys / to_seq_values materialized
       through List.of_seq or Array.of_seq, directly or through a
       [|>] / [@@] pipe (including with Seq combinators in between).
       Either form is fine when syntactically under a List/Array sort.
   D4  catch-all [try ... with _ ->] handlers, which swallow
       Out_of_memory, Stack_overflow and genuine bugs alike.
   D5  polymorphic compare/(=)/(<>) with an operand that is visibly a
       float-bearing record (record literal with a float field, a
       value annotated with a float-record type, or a projection of a
       known float field). Polymorphic comparison of floats breaks
       under NaN and under representation changes.

   D6  raw multicore primitives (Domain, Domain.DLS, Atomic, Mutex,
       Condition, Semaphore) outside the sanctioned parallel runtime
       (lib/par). Shared mutable state touched from a stray
       Domain.spawn bypasses the epoch barrier that makes the sharded
       simulation deterministic; everything else must go through
       Par.Pool / Par.Ctx, whose fallback build is sequential.

   D5 needs a cross-file phase 1: [collect_types] gathers every record
   type declaring a float(ish) field, over all files in the run, before
   the per-file rule pass. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Phase 1: float-bearing record types (for D5).                       *)

type type_env = {
  mutable float_record_types : string list; (* names of record types with a float field *)
  mutable float_fields : string list; (* the float field names of those records *)
}

let empty_env () = { float_record_types = []; float_fields = [] }

let rec type_is_floatish (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) -> (
    match (Longident.last txt, args) with
    | "float", [] -> true
    | ("option" | "array" | "list" | "ref"), [ a ] -> type_is_floatish a
    | _ -> false)
  | Ptyp_tuple ts -> List.exists type_is_floatish ts
  | _ -> false

let collect_types env (str : structure) =
  let structure_item it x =
    (match x.pstr_desc with
    | Pstr_type (_, decls) ->
      List.iter
        (fun d ->
          match d.ptype_kind with
          | Ptype_record labels ->
            let floats = List.filter (fun l -> type_is_floatish l.pld_type) labels in
            if floats <> [] then begin
              env.float_record_types <- d.ptype_name.txt :: env.float_record_types;
              env.float_fields <-
                List.map (fun l -> l.pld_name.txt) floats @ env.float_fields
            end
          | _ -> ())
        decls
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it x
  in
  let it = { Ast_iterator.default_iterator with structure_item } in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Phase 2: the rule pass.                                             *)

type ctx = {
  env : type_env;
  allow_wallclock : bool; (* the bench clock module may read the wall clock *)
  allow_multicore : bool; (* lib/par may use Domain/Atomic/Mutex directly *)
  mutable sorted_depth : int; (* > 0 while under a sort application *)
  mutable out : Diag.t list;
}

let add ctx ~code ~loc message = ctx.out <- Diag.make ~code ~loc ~message :: ctx.out

let path_of (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (Longident.flatten txt) | _ -> None

let is_sort_fn e =
  match path_of e with
  | Some [ ("List" | "ListLabels" | "Array" | "ArrayLabels"); f ] ->
    List.mem f [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]
  | _ -> false

(* [List.sort cmp] partially applied, or the bare sort identifier. *)
let is_sort_app e =
  is_sort_fn e || (match e.pexp_desc with Pexp_apply (f, _) -> is_sort_fn f | _ -> false)

let is_pipe e =
  match path_of e with Some [ ("|>" | "@@") ] -> true | _ -> false

(* Hashtbl.fold/iter under any module path spelling (Hashtbl.fold,
   MoreLabels.Hashtbl.fold, ...). *)
let hashtbl_iter_fold e =
  match path_of e with
  | Some p -> (
    match List.rev p with
    | (("fold" | "iter") as which) :: "Hashtbl" :: _ -> Some which
    | _ -> None)
  | None -> None

let is_of_seq e =
  match path_of e with
  | Some p -> (
    match List.rev p with
    | "of_seq" :: (("List" | "Array") as m) :: _ -> Some m
    | _ -> None)
  | None -> None

(* Does the subtree mention Hashtbl.to_seq{,_keys,_values}? *)
let contains_hashtbl_to_seq (e : expression) =
  let found = ref false in
  let expr it x =
    (match path_of x with
    | Some p -> (
      match List.rev p with
      | ("to_seq" | "to_seq_keys" | "to_seq_values") :: "Hashtbl" :: _ -> found := true
      | _ -> ())
    | None -> ());
    Ast_iterator.default_iterator.expr it x
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let is_fun e =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

(* Does the expression subtree contain a list cons? List literals
   desugar to [::] in the Parsetree, so this covers [x :: acc],
   [acc := x :: !acc] and [[x]] alike. *)
let builds_list (e : expression) =
  let found = ref false in
  let expr it x =
    (match x.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr it x
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let rec is_catch_all (p : pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (q, _) -> is_catch_all q
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

let is_poly_cmp path = match path with
  | [ "compare" ] | [ "Stdlib"; "compare" ] | [ "=" ] | [ "<>" ] -> true
  | _ -> false

(* Syntactic evidence that an operand is (or projects from) a
   float-bearing record. Returns a description for the message. *)
let float_record_evidence env (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, _); _ })
    when List.mem (Longident.last txt) env.float_record_types ->
    Some (Printf.sprintf "value of float-bearing record type '%s'" (Longident.last txt))
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ txt; _ } : Longident.t Location.loc), _) ->
             List.mem (Longident.last txt) env.float_fields)
           fields ->
    Some "record literal with a float field"
  | Pexp_field (_, { txt; _ }) when List.mem (Longident.last txt) env.float_fields ->
    Some (Printf.sprintf "float field '%s'" (Longident.last txt))
  | _ -> None

let check_expr ctx (e : expression) =
  (match e.pexp_desc with
  | Pexp_ident { txt; loc } -> (
    match Longident.flatten txt with
    | ([ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ]) when not ctx.allow_wallclock
      ->
      add ctx ~code:"D1" ~loc
        (Printf.sprintf
           "wall-clock read '%s' breaks deterministic replay; use the simulated clock, or \
            Bench_clock in the bench harness"
           (String.concat "." (Longident.flatten txt)))
    | "Random" :: _ :: _ ->
      let name = String.concat "." (Longident.flatten txt) in
      let extra =
        if Longident.last txt = "self_init" then
          " (self_init makes runs irreproducible by construction)"
        else ""
      in
      add ctx ~code:"D2" ~loc
        (Printf.sprintf
           "global randomness '%s'%s; all randomness must flow through the seeded Util.Rng"
           name extra)
    | ("Domain" | "Atomic" | "Mutex" | "Condition" | "Semaphore") :: _ :: _
      when not ctx.allow_multicore ->
      add ctx ~code:"D6" ~loc
        (Printf.sprintf
           "raw multicore primitive '%s' outside lib/par; shared state crossing domains \
            bypasses the deterministic epoch barrier — use Par.Pool / Par.Ctx"
           (String.concat "." (Longident.flatten txt)))
    | _ -> ())
  | Pexp_try (_, cases) ->
    List.iter
      (fun c ->
        if is_catch_all c.pc_lhs then
          add ctx ~code:"D4" ~loc:c.pc_lhs.ppat_loc
            "catch-all exception handler swallows Out_of_memory/Stack_overflow and real \
             bugs; match the specific exceptions instead")
      cases
  | Pexp_apply (f, args) -> (
    (* D3 form (a): a fold/iter callback that conses, whatever the
       argument's label or position. *)
    (match hashtbl_iter_fold f with
    | Some which
      when ctx.sorted_depth = 0
           && List.exists (fun (_, cb) -> is_fun cb && builds_list cb) args ->
      add ctx ~code:"D3" ~loc:e.pexp_loc
        (Printf.sprintf
           "Hashtbl.%s builds a list in hash order; sort the escaping result (e.g. '|> \
            List.sort compare') or keep it commutative"
           which)
    | _ -> ());
    (* D3 form (b): to_seq materialized into a list/array, directly or
       through a pipe. The pipe case fires on the pipe application so a
       [|> Seq.map ... |> List.of_seq] chain is still caught. *)
    (match is_of_seq f with
    | Some m
      when ctx.sorted_depth = 0
           && List.exists (fun (_, a) -> contains_hashtbl_to_seq a) args ->
      add ctx ~code:"D3" ~loc:e.pexp_loc
        (Printf.sprintf
           "Hashtbl.to_seq materialized via %s.of_seq escapes hash order; sort the result \
            or keep it a transient sequence"
           m)
    | _ ->
      if
        ctx.sorted_depth = 0 && is_pipe f
        && List.exists (fun (_, a) -> is_of_seq a <> None) args
        && List.exists (fun (_, a) -> contains_hashtbl_to_seq a) args
      then
        add ctx ~code:"D3" ~loc:e.pexp_loc
          "Hashtbl.to_seq materialized via of_seq escapes hash order; sort the result or \
           keep it a transient sequence");
    match (path_of f, args) with
    | Some p, [ (_, a); (_, b) ] when is_poly_cmp p -> (
      let op = String.concat "." p in
      match (float_record_evidence ctx.env a, float_record_evidence ctx.env b) with
      | Some why, _ | _, Some why ->
        add ctx ~code:"D5" ~loc:e.pexp_loc
          (Printf.sprintf
             "polymorphic '%s' applied to %s; NaN and representation changes break it — \
              use Float.compare or an explicit comparator"
             op why)
      | None, None -> ())
    | _ -> ())
  | _ -> ())

let run_rules env ~allow_wallclock ~allow_multicore (str : structure) =
  let ctx = { env; allow_wallclock; allow_multicore; sorted_depth = 0; out = [] } in
  let expr it (e : expression) =
    check_expr ctx e;
    let under_sort =
      match e.pexp_desc with
      | Pexp_apply (f, args) ->
        is_sort_fn f || (is_pipe f && List.exists (fun (_, a) -> is_sort_app a) args)
      | _ -> false
    in
    if under_sort then begin
      ctx.sorted_depth <- ctx.sorted_depth + 1;
      Ast_iterator.default_iterator.expr it e;
      ctx.sorted_depth <- ctx.sorted_depth - 1
    end
    else Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev ctx.out
