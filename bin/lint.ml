(* mortar-lint: determinism & correctness static analysis (rules D1-D6).

   Usage: lint [--baseline FILE] [--update-baseline] [PATH ...]

   PATHs default to the four source roots. Directories are scanned
   recursively (skipping _build and the lint fixtures); files are linted
   as given. Exit status: 0 clean, 1 findings, 2 errors.

   Suppress a finding inline with [(* lint: allow D3 <reason> *)] on the
   offending line or the line above; grandfather known debt in the
   baseline file (one [CODE FILE:LINE] per line, regenerate with
   --update-baseline). *)

let usage = "usage: lint [--baseline FILE] [--update-baseline] [PATH ...]"

let () =
  let baseline = ref None in
  let update = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE subtract findings listed in FILE" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline file with the current findings" );
      ("--quiet", Arg.Set quiet, " only set the exit status, print nothing");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench"; "test" ] | ps -> ps
  in
  let report = Mortar_lint.Driver.run ?baseline_file:!baseline ~paths () in
  List.iter (fun e -> Printf.eprintf "lint: %s\n" e) report.errors;
  if report.errors <> [] then exit 2;
  (match (!update, !baseline) with
  | true, Some file ->
    let oc = open_out file in
    output_string oc "# mortar-lint baseline: grandfathered findings, one per line.\n";
    output_string oc "# Regenerate with: dune exec bin/lint.exe -- --baseline ";
    output_string oc (file ^ " --update-baseline\n");
    List.iter
      (fun d -> output_string oc (Mortar_lint.Suppress.baseline_entry d ^ "\n"))
      (report.findings @ report.baselined);
    close_out oc;
    Printf.printf "lint: wrote %d entries to %s\n"
      (List.length report.findings + List.length report.baselined)
      file
  | true, None ->
    prerr_endline "lint: --update-baseline requires --baseline FILE";
    exit 2
  | false, _ ->
    if not !quiet then begin
      List.iter (fun d -> print_endline (Mortar_lint.Diag.to_string d)) report.findings;
      match (report.findings, report.baselined) with
      | [], [] -> ()
      | [], b -> Printf.printf "lint: clean (%d baselined)\n" (List.length b)
      | f, b ->
        Printf.printf "lint: %d finding(s), %d baselined\n" (List.length f)
          (List.length b)
    end;
    if report.findings <> [] then exit 1)
