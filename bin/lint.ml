(* mortar-lint: determinism & correctness static analysis.

   Usage: lint [OPTIONS] [PATH ...]

   PATHs default to the four source roots. Directories are scanned
   recursively (skipping _build and the lint fixtures); files are linted
   as given. Two phases run: the syntactic rules (D1-D6) over the
   Parsetree of every .ml, and the typed rules (D7-D9) over every
   compiler .cmt artifact found under the same roots (or under
   _build/default/<root> when invoked from the repo root) — build first,
   or pass --no-typed, to control the typed pass. Exit status: 0 clean,
   1 findings, 2 errors.

   Findings are suppressed inline with an allow comment (the marker
   "lint:" followed by the word "allow" and the rule codes, plus a
   reason) on the offending line or the line above; known debt is
   grandfathered in the baseline file (one [CODE FILE:LINE] per line,
   regenerate with --update-baseline). Suppressions that shield nothing
   are reported as warnings — or as failures under
   --strict-suppressions, which is how CI keeps the allow-list honest. *)

let usage =
  "usage: lint [--baseline FILE] [--update-baseline] [--json FILE|-] [--github]\n\
  \            [--strict-suppressions] [--no-typed] [--source-root DIR] [--quiet]\n\
  \            [PATH ...]"

let () =
  let baseline = ref None in
  let update = ref false in
  let quiet = ref false in
  let json = ref None in
  let github = ref false in
  let strict_supp = ref false in
  let no_typed = ref false in
  let source_root = ref "." in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE subtract findings listed in FILE" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline file with the current findings" );
      ( "--json",
        Arg.String (fun f -> json := Some f),
        "FILE write the report as JSON to FILE ('-' for stdout)" );
      ( "--github",
        Arg.Set github,
        " emit GitHub Actions ::error/::warning annotations" );
      ( "--strict-suppressions",
        Arg.Set strict_supp,
        " fail (exit 1) on stale or malformed suppressions" );
      ("--no-typed", Arg.Set no_typed, " skip the typed pass (D7-D9) entirely");
      ( "--source-root",
        Arg.Set_string source_root,
        "DIR resolve cmt-recorded source paths against DIR (default .)" );
      ("--quiet", Arg.Set quiet, " only set the exit status, print nothing");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench"; "test" ] | ps -> ps
  in
  (* Where to look for cmts: the paths themselves (the dune @lint alias
     runs inside _build/default, where .objs dirs sit next to sources)
     plus _build/default/<path> for manual runs from the repo root. *)
  let cmt_paths =
    if !no_typed then []
    else
      List.concat_map
        (fun p -> [ p; Filename.concat (Filename.concat "_build" "default") p ])
        paths
      |> List.filter Sys.file_exists
  in
  let report =
    Mortar_lint.Driver.run ?baseline_file:!baseline ~cmt_paths
      ~source_root:!source_root ~paths ()
  in
  List.iter (fun e -> Printf.eprintf "lint: %s\n" e) report.errors;
  if report.errors <> [] then exit 2;
  (match !json with
  | None -> ()
  | Some dest ->
    let arr ds =
      "[" ^ String.concat "," (List.map Mortar_lint.Diag.to_json ds) ^ "]"
    in
    let body =
      Printf.sprintf
        "{\"findings\":%s,\"baselined\":%s,\"stale\":%s,\"typed_modules\":%d}\n"
        (arr report.findings) (arr report.baselined) (arr report.stale)
        report.typed_modules
    in
    if dest = "-" then print_string body
    else begin
      let oc = open_out dest in
      output_string oc body;
      close_out oc
    end);
  if !github then begin
    let annotate level (d : Mortar_lint.Diag.t) =
      Printf.printf "::%s file=%s,line=%d,col=%d::[%s] %s\n" level d.file
        (max d.line 1) (max d.col 1) d.code d.message
    in
    List.iter (annotate "error") report.findings;
    List.iter (annotate "warning") report.stale
  end;
  match (!update, !baseline) with
  | true, Some file ->
    let oc = open_out file in
    output_string oc "# mortar-lint baseline: grandfathered findings, one per line.\n";
    output_string oc "# Regenerate with: dune exec bin/lint.exe -- --baseline ";
    output_string oc (file ^ " --update-baseline\n");
    List.iter
      (fun d -> output_string oc (Mortar_lint.Suppress.baseline_entry d ^ "\n"))
      (report.findings @ report.baselined);
    close_out oc;
    Printf.printf "lint: wrote %d entries to %s\n"
      (List.length report.findings + List.length report.baselined)
      file
  | true, None ->
    prerr_endline "lint: --update-baseline requires --baseline FILE";
    exit 2
  | false, _ ->
    if not !quiet then begin
      List.iter (fun d -> print_endline (Mortar_lint.Diag.to_string d)) report.findings;
      List.iter
        (fun d ->
          print_endline ("warning: " ^ Mortar_lint.Diag.to_string d))
        report.stale;
      (match (report.findings, report.baselined) with
      | [], [] -> ()
      | [], b -> Printf.printf "lint: clean (%d baselined)\n" (List.length b)
      | f, b ->
        Printf.printf "lint: %d finding(s), %d baselined\n" (List.length f)
          (List.length b));
      if report.typed_modules = 0 && not !no_typed then
        print_endline
          "lint: typed pass (D7-D9) covered 0 modules — build first so .cmt artifacts \
           exist"
      else if not !quiet then
        Printf.printf "lint: typed pass covered %d module(s)\n" report.typed_modules
    end;
    if report.findings <> [] || (!strict_supp && report.stale <> []) then exit 1
