(* obs_check: gate a metrics dump against a checked-in baseline.

   Usage: obs_check CURRENT BASELINE [--abs X] [--rel Y] [--allow-extra]

   Both files are JSON-lines metrics dumps as written by --metrics-out.
   Every metric present in the baseline must exist in the current dump
   and agree within tolerance: |cur - base| <= abs OR |cur - base| <=
   rel * |base|. Counters and gauges compare their value; histograms
   compare count, sum, overflow and every bucket count (bucket edges
   must match exactly). Metrics present in the current dump but not in
   the baseline fail unless --allow-extra is given, so a renamed metric
   cannot silently drop out of the gate. *)

open Cmdliner
module Obs = Mortar_obs.Obs
module J = Mortar_obs.Obs_json

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let load path =
  List.map
    (fun line ->
      match J.metric_of_line line with
      | Ok m -> ((J.metric_scope m, J.metric_name m), m)
      | Error e -> failwith (Printf.sprintf "%s: bad metric line (%s): %s" path e line))
    (read_lines path)

type verdict = { mutable failures : int; mutable compared : int }

let fail v fmt =
  v.failures <- v.failures + 1;
  Printf.printf "FAIL ";
  Printf.kfprintf (fun oc -> output_char oc '\n') stdout fmt

let within ~abs_tol ~rel_tol ~base ~cur =
  let d = Float.abs (cur -. base) in
  d <= abs_tol || d <= rel_tol *. Float.abs base

let check_num v ~abs_tol ~rel_tol ~scope ~name ~what ~base ~cur =
  v.compared <- v.compared + 1;
  if not (within ~abs_tol ~rel_tol ~base ~cur) then
    fail v "%s/%s %s: current %s vs baseline %s (abs %s, rel %s)" scope name what
      (Obs.json_float cur) (Obs.json_float base)
      (Obs.json_float abs_tol) (Obs.json_float rel_tol)

let arrays_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (Float.equal x b.(i)) then ok := false) a;
      !ok)

let check_metric v ~abs_tol ~rel_tol ~scope ~name base cur =
  match (base, cur) with
  | J.Counter { value = b; _ }, J.Counter { value = c; _ }
  | J.Gauge { value = b; _ }, J.Gauge { value = c; _ } ->
    check_num v ~abs_tol ~rel_tol ~scope ~name ~what:"value" ~base:b ~cur:c
  | J.Histogram hb, J.Histogram hc ->
    if not (arrays_equal hb.buckets hc.buckets) then
      fail v "%s/%s: histogram bucket edges differ" scope name
    else begin
      check_num v ~abs_tol ~rel_tol ~scope ~name ~what:"count" ~base:hb.count ~cur:hc.count;
      check_num v ~abs_tol ~rel_tol ~scope ~name ~what:"sum" ~base:hb.sum ~cur:hc.sum;
      check_num v ~abs_tol ~rel_tol ~scope ~name ~what:"overflow" ~base:hb.overflow
        ~cur:hc.overflow;
      Array.iteri
        (fun i b ->
          check_num v ~abs_tol ~rel_tol ~scope ~name
            ~what:(Printf.sprintf "bucket[%d]" i)
            ~base:b ~cur:hc.counts.(i))
        hb.counts
    end
  | _ ->
    let kind = function
      | J.Counter _ -> "counter"
      | J.Gauge _ -> "gauge"
      | J.Histogram _ -> "histogram"
    in
    fail v "%s/%s: kind changed (baseline %s, current %s)" scope name (kind base) (kind cur)

let run current baseline abs_tol rel_tol allow_extra =
  match (load current, load baseline) with
  | exception Failure msg ->
    prerr_endline msg;
    1
  | exception Sys_error msg ->
    prerr_endline msg;
    1
  | cur, base ->
    let v = { failures = 0; compared = 0 } in
    List.iter
      (fun ((scope, name), bm) ->
        match List.assoc_opt (scope, name) cur with
        | None -> fail v "%s/%s: missing from current dump" scope name
        | Some cm -> check_metric v ~abs_tol ~rel_tol ~scope ~name bm cm)
      base;
    if not allow_extra then
      List.iter
        (fun ((scope, name), _) ->
          if List.assoc_opt (scope, name) base = None then
            fail v "%s/%s: not in baseline (pass --allow-extra or update the baseline)"
              scope name)
        cur;
    if v.failures = 0 then begin
      Printf.printf "obs_check OK: %d comparison(s) across %d baseline metric(s)\n"
        v.compared (List.length base);
      0
    end
    else begin
      Printf.printf "obs_check FAILED: %d failure(s) over %d comparison(s)\n" v.failures
        v.compared;
      1
    end

let cmd =
  let current =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Metrics dump to check (JSON lines).")
  in
  let baseline =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Checked-in baseline dump (JSON lines).")
  in
  let abs_tol =
    Arg.(
      value & opt float 0.0
      & info [ "abs" ] ~docv:"X" ~doc:"Absolute tolerance per compared number.")
  in
  let rel_tol =
    Arg.(
      value & opt float 0.0
      & info [ "rel" ] ~docv:"Y"
          ~doc:"Relative tolerance per compared number (fraction of the baseline).")
  in
  let allow_extra =
    Arg.(
      value & flag
      & info [ "allow-extra" ] ~doc:"Do not fail on metrics absent from the baseline.")
  in
  Cmd.v
    (Cmd.info "obs_check" ~version:"1.0.0"
       ~doc:"Diff a metrics dump against a baseline with abs/rel tolerances.")
    Term.(const run $ current $ baseline $ abs_tol $ rel_tol $ allow_extra)

let () = exit (Cmd.eval' cmd)
