(* The mortar command-line tool.

   - [mortar experiments [--quick] [ID ...]] reruns the paper's evaluation
     (all experiments, or selected by id);
   - [mortar list] shows the experiment registry;
   - [mortar run QUERY.msl [--hosts N] [--duration S]] compiles a Mortar
     Stream Language program, deploys it on a simulated federation, feeds
     a synthetic sensor stream, and prints the root's results — the
     quickest way to play with the system. *)

open Cmdliner
module Obs = Mortar_obs.Obs

let setup_registry () = Mortar_experiments.Registry.ensure ()

(* ------------------------------------------------------------------ *)
(* Observability sinks, shared by `experiments` and `run`: when either
   output is requested, turn the default registry on for the duration
   and dump it afterwards as JSON lines. *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the metrics registry (counters, gauges, histograms) as JSON lines.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the structured event trace (sim-time stamped) as JSON lines.")

(* Execution width of the sharded simulation runtime. Output is
   byte-identical for every value (the logical decomposition is fixed by
   the topology); this only sets how many domains run shard slices. *)
let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Run the simulation on $(docv) domains (OCaml 5 only; 1 = sequential). Results \
           are byte-identical for any N.")

let set_shards n = Mortar_emul.Deployment.default_domains := max 1 n

let with_obs ~metrics_out ~trace_out f =
  if metrics_out <> None || trace_out <> None then begin
    Obs.enabled := true;
    Obs.Reg.clear Obs.default
  end;
  let r = f () in
  Option.iter (fun p -> Obs.write_lines p (Obs.Reg.metrics_lines Obs.default)) metrics_out;
  Option.iter (fun p -> Obs.write_lines p (Obs.Reg.trace_lines Obs.default)) trace_out;
  r

(* ------------------------------------------------------------------ *)
(* experiments                                                          *)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scaled-down configurations (fast).")
  in
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List registered experiments (id and description) and exit.")
  in
  let planner =
    Arg.(
      value
      & opt (some (enum [ ("naive", `Naive); ("shared", `Shared) ])) None
      & info [ "planner" ] ~docv:"MODE"
          ~doc:
            "Restrict the mlq experiment to one planning mode: $(b,naive) (a private tree \
             set per query) or $(b,shared) (the multi-query planner). Default: run both \
             and compare.")
  in
  let queries =
    Arg.(
      value
      & opt (some int) None
      & info [ "queries" ] ~docv:"N"
          ~doc:"Run the mlq experiment at a single concurrent-query count instead of its \
                built-in ladder.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run quick shards metrics_out trace_out list_flag planner queries ids =
    setup_registry ();
    set_shards shards;
    Mortar_experiments.Mlq.planner_override := planner;
    Mortar_experiments.Mlq.queries_override := queries;
    if list_flag then begin
      List.iter
        (fun (e : Mortar_experiments.Common.experiment) ->
          Printf.printf "%-10s %s\n" e.id e.title)
        (Mortar_experiments.Common.all ());
      `Ok ()
    end
    else
      match ids with
    | [] ->
      with_obs ~metrics_out ~trace_out (fun () ->
          Mortar_experiments.Common.run_all ~quick);
      `Ok ()
    | ids ->
      let missing =
        List.filter (fun id -> Mortar_experiments.Common.find id = None) ids
      in
      if missing <> [] then
        `Error (false, "unknown experiment(s): " ^ String.concat ", " missing)
      else begin
        with_obs ~metrics_out ~trace_out (fun () ->
            List.iter
              (fun id ->
                match Mortar_experiments.Common.find id with
                | Some e ->
                  Mortar_experiments.Common.header e;
                  e.Mortar_experiments.Common.run ~quick
                | None -> ())
              ids);
        `Ok ()
      end
  in
  let info =
    Cmd.info "experiments" ~doc:"Reproduce the paper's figures (tables on stdout)."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ quick $ shards_arg $ metrics_out_arg $ trace_out_arg $ list_flag
       $ planner $ queries $ ids))

let list_cmd =
  let run () =
    setup_registry ();
    List.iter
      (fun (e : Mortar_experiments.Common.experiment) ->
        Printf.printf "%-8s %s\n" e.id e.title)
      (Mortar_experiments.Common.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproduction experiments.") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* run: deploy an MSL program on a simulated federation                 *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY.msl" ~doc:"MSL program.")
  in
  let hosts =
    Arg.(value & opt int 64 & info [ "hosts" ] ~doc:"Number of simulated peers.")
  in
  let duration =
    Arg.(value & opt float 30.0 & info [ "duration" ] ~doc:"Simulated seconds to run.")
  in
  let sensor_rate =
    Arg.(value & opt float 1.0 & info [ "rate" ] ~doc:"Sensor tuples per second per node.")
  in
  let run file hosts duration sensor_rate shards metrics_out trace_out =
    Mortar_wifi.Wifi.register_trilat ();
    set_shards shards;
    let text =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Mortar_core.Msl.parse text with
    | exception Mortar_core.Msl.Parse_error { line; message } ->
      `Error (false, Printf.sprintf "%s:%d: %s" file line message)
    | program ->
      with_obs ~metrics_out ~trace_out @@ fun () ->
      let rng = Mortar_util.Rng.create 2024 in
      let topo =
        Mortar_net.Topology.transit_stub rng ~transits:4
          ~stubs:(max 4 (hosts / 20))
          ~hosts ()
      in
      let d = Mortar_emul.Deployment.create_sharded ~seed:2024 topo in
      Mortar_emul.Deployment.converge_coordinates d ();
      let metas = Mortar_core.Msl.query_metas program ~root:0 ~total_nodes:hosts () in
      List.iter
        (fun ((meta : Mortar_core.Query.meta), nodes) ->
          let node_array =
            match nodes with
            | Mortar_core.Msl.All -> Array.init (hosts - 1) (fun i -> i + 1)
            | Mortar_core.Msl.Nodes l -> Array.of_list (List.filter (fun n -> n <> 0) l)
          in
          let treeset =
            if Array.length node_array = 0 then
              Mortar_overlay.Treeset.random rng ~bf:2 ~d:1 ~root:0 ~nodes:node_array
            else
              Mortar_emul.Deployment.plan d ~bf:(min 16 (max 2 (hosts / 8))) ~root:0
                ~nodes:node_array ()
          in
          Mortar_emul.Deployment.at d 1.0 (fun () ->
              Mortar_core.Peer.install_query (Mortar_emul.Deployment.peer d 0) meta treeset))
        metas;
      (* Synthetic sensor: every node emits records {value; node} on every
         stream name the program sources. *)
      let sources =
        List.filter_map
          (function
            | Mortar_core.Msl.Derived_stream { source; _ }
            | Mortar_core.Msl.Query_def { source; _ } ->
              if List.exists (fun s -> Mortar_core.Msl.statement_name s = source) program
              then None
              else Some source)
          program
        |> List.sort_uniq compare
      in
      List.iter
        (fun stream ->
          for node = 0 to hosts - 1 do
            (* Scalar payloads feed aggregates directly and still expose a
               "value" field to select/map expressions. *)
            Mortar_emul.Deployment.sensor d ~node ~stream ~period:(1.0 /. sensor_rate)
              (fun k -> Mortar_core.Value.Float (float_of_int ((node + k) mod 100)))
          done)
        sources;
      Mortar_core.Peer.on_result
        (Mortar_emul.Deployment.peer d 0)
        (fun (r : Mortar_core.Peer.result) ->
          Printf.printf "[%8.2fs] %s slot=%d count=%d value=%s\n"
            (Mortar_emul.Deployment.now d) r.query r.slot r.count
            (Mortar_core.Value.show r.value));
      Mortar_emul.Deployment.run_until d duration;
      `Ok ()
  in
  let info = Cmd.info "run" ~doc:"Run an MSL program on a simulated federation." in
  Cmd.v info
    Term.(
      ret
        (const run $ file $ hosts $ duration $ sensor_rate $ shards_arg $ metrics_out_arg
       $ trace_out_arg))

let main =
  let info =
    Cmd.info "mortar" ~version:"1.0.0"
      ~doc:"Mortar: wide-scale data stream management (reproduction)"
  in
  Cmd.group info [ experiments_cmd; list_cmd; run_cmd ]

let () = exit (Cmd.eval main)
